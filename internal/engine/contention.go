package engine

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netem"
	"repro/internal/nsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

// Class is a contention workload traffic class.
type Class int

// The three traffic classes of the contention mix. Web flows fetch a few
// heavy-tailed (Pareto) objects with think time between them — short flows
// that live mostly in slow start. Bulk flows download one large object —
// long flows that build the standing queue. RPC flows issue short
// fixed-size calls back to back — latency-bound traffic that feels whatever
// queue the other classes leave standing.
const (
	ClassWeb Class = iota
	ClassBulk
	ClassRPC
	numClasses
)

var classNames = [numClasses]string{"web", "bulk", "rpc"}

// String names the class.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return "invalid"
	}
	return classNames[c]
}

// Mix is the web:bulk:rpc flow-count ratio of a contention workload.
type Mix struct {
	Web, Bulk, RPC int
}

// ParseMix parses "web:bulk:rpc" integer weights, e.g. "6:1:3".
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Mix{}, fmt.Errorf("engine: mix %q: want web:bulk:rpc", s)
	}
	var w [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return Mix{}, fmt.Errorf("engine: mix %q: bad weight %q", s, p)
		}
		w[i] = v
	}
	if w[0]+w[1]+w[2] == 0 {
		return Mix{}, fmt.Errorf("engine: mix %q: all weights zero", s)
	}
	return Mix{Web: w[0], Bulk: w[1], RPC: w[2]}, nil
}

// String renders the mix as "web:bulk:rpc".
func (m Mix) String() string {
	return fmt.Sprintf("%d:%d:%d", m.Web, m.Bulk, m.RPC)
}

// Counts deterministically partitions flows across the classes in weight
// proportion, by cumulative integer boundaries — the counts always sum to
// flows exactly, and a given (mix, flows) pair partitions identically
// everywhere.
func (m Mix) Counts(flows int) [numClasses]int {
	w := [numClasses]int{m.Web, m.Bulk, m.RPC}
	total := w[0] + w[1] + w[2]
	var out [numClasses]int
	if total == 0 || flows <= 0 {
		return out
	}
	cum, prev := 0, 0
	for i := range w {
		cum += w[i]
		b := flows * cum / total
		out[i] = b - prev
		prev = b
	}
	return out
}

// ContentionSpec describes one contention cell: N tcpsim flows in three
// classes sharing a qdisc'd, trace-shaped downlink. All randomness (arrival
// times, web object sizes, think times) derives from Seed via
// sim.DeriveSeed, so a spec is one deterministic simulation regardless of
// which shard runs it.
type ContentionSpec struct {
	// Seed roots every random stream in the cell.
	Seed uint64
	// Flows is the total concurrent-flow population across classes.
	Flows int
	// Mix is the web:bulk:rpc flow ratio (zero value: 6:1:3).
	Mix Mix
	// Qdisc disciplines the contended downlink (zero value: unbounded
	// droptail). ECN specs negotiate ECN on every connection.
	Qdisc netem.QdiscSpec
	// Up and Down shape the two link directions; nil defaults to a constant
	// 20 Mbit/s trace each.
	Up, Down *trace.Trace
	// OneWayDelay is the propagation delay either side of the link
	// (default 10 ms).
	OneWayDelay sim.Time
	// ArrivalWindow is the span over which flows start: each class's flows
	// arrive by a deterministic Poisson process filling the window
	// (default 2 s).
	ArrivalWindow sim.Time

	// Web class: WebTransfers objects per flow (default 2), sizes Pareto
	// (WebMinBytes scale, WebAlpha shape, clamped to WebMaxBytes; defaults
	// 4 KB / 1.3 / 256 KB), exponential think time with mean WebThink
	// (default 200 ms) between objects.
	WebTransfers int
	WebThink     sim.Time
	WebMinBytes  int
	WebMaxBytes  int
	WebAlpha     float64

	// Bulk class: one BulkBytes download per flow (default 512 KB).
	BulkBytes int

	// RPC class: RPCCalls calls per flow (default 6) of RPCBytes each
	// (default 2048), exponential gap with mean RPCGap (default 50 ms).
	RPCCalls int
	RPCGap   sim.Time
	RPCBytes int

	// TrackClassSojourns enables per-flow queue telemetry on the downlink
	// and its per-class aggregation (ClassStats queue columns). Off for
	// benchmarks: the tracking map is off the flat ns/event path.
	TrackClassSojourns bool
}

// withDefaults fills zero fields with the documented defaults.
func (s ContentionSpec) withDefaults() ContentionSpec {
	if s.Flows <= 0 {
		s.Flows = 100
	}
	if s.Mix == (Mix{}) {
		s.Mix = Mix{Web: 6, Bulk: 1, RPC: 3}
	}
	if s.OneWayDelay <= 0 {
		s.OneWayDelay = 10 * sim.Millisecond
	}
	if s.ArrivalWindow <= 0 {
		s.ArrivalWindow = 2 * sim.Second
	}
	if s.WebTransfers <= 0 {
		s.WebTransfers = 2
	}
	if s.WebThink <= 0 {
		s.WebThink = 200 * sim.Millisecond
	}
	if s.WebMinBytes <= 0 {
		s.WebMinBytes = 4 << 10
	}
	if s.WebMaxBytes <= 0 {
		s.WebMaxBytes = 256 << 10
	}
	if s.WebAlpha <= 0 {
		s.WebAlpha = 1.3
	}
	if s.BulkBytes <= 0 {
		s.BulkBytes = 512 << 10
	}
	if s.RPCCalls <= 0 {
		s.RPCCalls = 6
	}
	if s.RPCGap <= 0 {
		s.RPCGap = 50 * sim.Millisecond
	}
	if s.RPCBytes <= 0 {
		s.RPCBytes = 2048
	}
	return s
}

// ClassStats is one traffic class's slice of a contention cell's results.
// The queue columns (QBytes onward) are filled only when the spec enables
// TrackClassSojourns.
type ClassStats struct {
	// Flows and Transfers count the class's flow population and its
	// completed transfers; Bytes is application payload received.
	Flows     int
	Transfers int
	Bytes     uint64
	// XferP50Ms and XferP95Ms summarize per-transfer completion latency
	// (dial to close).
	XferP50Ms, XferP95Ms float64
	// QBytes is the class's share of bytes the downlink queue delivered;
	// QMeanMs/QP50Ms/QP95Ms summarize the class's per-packet sojourn
	// through that queue; QDrops and QMarks are its losses and CE marks.
	QBytes                  uint64
	QMeanMs, QP50Ms, QP95Ms float64
	QDrops, QMarks          uint64
}

// ContentionResult is one cell's outcome. Every field is a pure function of
// the spec — virtual-clock measurements and event-order-deterministic
// aggregates, never wall-clock or shard identity — so results are
// byte-identical at any shard count.
type ContentionResult struct {
	Flows     int
	FlowsDone int
	// Errors counts failed transfers (dial errors, short or reset reads).
	Errors int
	// Duration is the virtual time at which the last event fired.
	Duration sim.Time
	// Events is the number of loop events the cell fired.
	Events uint64
	// Downlink queue totals.
	TailDrops, AQMDrops, AQMMarks uint64
	MaxQueue                      int
	// PeakConns is the high-water mark of concurrently open client
	// connections — evidence the population was genuinely concurrent.
	PeakConns int
	Classes   [numClasses]ClassStats
}

// Contention ports.
const (
	webPort  = 8080
	rpcPort  = 8081
	bulkPort = 9000
)

var (
	contentionClientAddr = nsim.ParseAddr("10.1.0.1")
	contentionServerAddr = nsim.ParseAddr("10.1.0.2")
)

// cflow is one client flow's state machine. A flow runs transfers
// sequentially: dial, send an 8-byte size request (web/rpc; bulk servers
// push unprompted), count response bytes, close, think, repeat. cflows are
// pooled on the shard (contentionScratch) and reused across cells: the
// rng is an embedded value reseeded per cell, and the two per-flow
// callbacks are built once per cflow lifetime — they capture only the
// cflow pointer and read run/conn through it at call time — so a warmed
// shard's flow fan-out allocates nothing per flow.
type cflow struct {
	class Class
	rng   sim.Rand
	left  int // transfers remaining, current included
	want  int // expected response bytes this transfer
	got   int
	begin sim.Time
	run   *contentionRun
	conn  *tcpsim.Conn
	// req backs the size request; WriteStable aliases it, which is safe
	// because it is rewritten only after the previous transfer's connection
	// has fully closed.
	req     [8]byte
	onData  func([]byte)
	onClose func(error)
}

// contentionRun is the per-cell driver state shared by all flows.
type contentionRun struct {
	spec ContentionSpec
	loop *sim.Loop
	cs   *tcpsim.Stack

	flows      []cflow
	live, peak int
	done, errs int

	xferMS [numClasses]*stats.Accumulator
	bytes  [numClasses]uint64
	xfers  [numClasses]int
}

// reset prepares the pooled run for a new cell, reusing the accumulators'
// backing arrays.
func (r *contentionRun) reset(spec ContentionSpec, loop *sim.Loop, cs *tcpsim.Stack) {
	r.spec, r.loop, r.cs = spec, loop, cs
	r.live, r.peak, r.done, r.errs = 0, 0, 0, 0
	for i := range r.xferMS {
		if r.xferMS[i] == nil {
			r.xferMS[i] = stats.NewAccumulator()
		} else {
			r.xferMS[i].Reset()
		}
	}
	r.bytes = [numClasses]uint64{}
	r.xfers = [numClasses]int{}
}

// contentionScratch is the shard-pooled session state: the flow slice (and
// with it every cflow's persistent callbacks) plus the run driver survive
// across the shard's cells, so per-cell setup cost is dominated by the
// simulation itself, not by rebuilding 10k session structs.
type contentionScratch struct {
	flows []cflow
	run   contentionRun
}

func contentionScratchFor(sh *Shard) *contentionScratch {
	return sh.Scratch("engine.contention", func() any { return new(contentionScratch) }).(*contentionScratch)
}

// contentionArrive is the shared arrival/think ArgHandler: arg is the
// *cflow whose next transfer is due. Bound once per schedule call with no
// closure.
func contentionArrive(_ sim.Time, arg any) {
	f := arg.(*cflow)
	f.run.startTransfer(f)
}

// RunContention runs one contention cell on the shard and returns its
// result. The shard's loop, pools and connection pool are reused across
// calls, so after the first cell warms them the per-packet path allocates
// nothing.
func RunContention(sh *Shard, spec ContentionSpec) ContentionResult {
	spec = spec.withDefaults()
	up, down := spec.Up, spec.Down
	if up == nil {
		up = defaultContentionTrace()
	}
	if down == nil {
		down = defaultContentionTrace()
	}

	loop := sh.Loop()
	fired0 := loop.Fired()
	network := nsim.NewNetworkPooled(loop, sh.Pools())
	client := network.NewNamespace("client")
	server := network.NewNamespace("server")
	client.AddAddress(contentionClientAddr)
	server.AddAddress(contentionServerAddr)

	// Only the downlink (responses, the bulk of the bytes) is contended
	// through the swept qdisc; the uplink carries requests and ACKs through
	// an unbounded droptail so the cells differ in exactly one variable.
	upQ := netem.QdiscSpec{}.Build()
	downQ := spec.Qdisc.Build()
	qs := downQ.QueueStats()
	var classOf map[uint64]Class
	if spec.TrackClassSojourns {
		qs.TrackFlowSojourns()
		classOf = make(map[uint64]Class, spec.Flows)
	}
	upPipe := netem.NewPipeline(
		netem.NewDelayBox(loop, spec.OneWayDelay),
		netem.NewTraceBox(loop, up.Cursor(), upQ),
	)
	downPipe := netem.NewPipeline(
		netem.NewTraceBox(loop, down.Cursor(), downQ),
		netem.NewDelayBox(loop, spec.OneWayDelay),
	)
	ec, es := nsim.Connect(client, server, upPipe, downPipe)
	client.AddDefaultRoute(ec)
	server.AddDefaultRoute(es)

	cs := tcpsim.NewStackPool(client, sh.Segments())
	ss := tcpsim.NewStackPool(server, sh.Segments())
	cs.SetConnPool(sh.Conns())
	ss.SetConnPool(sh.Conns())
	if spec.Qdisc.ECN {
		cs.SetECN(true)
		ss.SetECN(true)
	}

	// Servers serve every response body from the shard's stable zero
	// buffer: WriteStable aliases it, so response bytes never allocate.
	maxResp := spec.WebMaxBytes
	if spec.BulkBytes > maxResp {
		maxResp = spec.BulkBytes
	}
	if spec.RPCBytes > maxResp {
		maxResp = spec.RPCBytes
	}
	payload := sh.Payload(maxResp)

	// One callback value per cell serves every accepted connection: the
	// conn-passing forms (OnDataConn/OnCloseConn) keep the per-accept path
	// free of closure allocation.
	serveSize := func(c *tcpsim.Conn, p []byte) {
		// The request is exactly one 8-byte segment (a single WriteStable
		// on the client); anything else is a protocol error and the
		// response is simply not sent — the client counts the short read
		// as a transfer error.
		if len(p) != 8 {
			return
		}
		size := int(binary.BigEndian.Uint64(p))
		if size > len(payload) {
			size = len(payload)
		}
		c.WriteStable(payload[:size])
		c.Close()
	}
	serverDone := func(c *tcpsim.Conn, _ error) { ss.Recycle(c) }
	sizeServer := func(class Class) func(*tcpsim.Conn) {
		return func(c *tcpsim.Conn) {
			if classOf != nil {
				classOf[c.Flow()] = class
			}
			c.OnDataConn(serveSize)
			c.OnCloseConn(serverDone)
		}
	}
	mustListen(ss.Listen(nsim.AddrPort{Addr: contentionServerAddr, Port: webPort}, sizeServer(ClassWeb)))
	mustListen(ss.Listen(nsim.AddrPort{Addr: contentionServerAddr, Port: rpcPort}, sizeServer(ClassRPC)))
	bulkBody := payload[:spec.BulkBytes]
	mustListen(ss.Listen(nsim.AddrPort{Addr: contentionServerAddr, Port: bulkPort}, func(c *tcpsim.Conn) {
		if classOf != nil {
			classOf[c.Flow()] = ClassBulk
		}
		c.OnDataConn(ignoreData)
		c.WriteStable(bulkBody)
		c.Close()
		c.OnCloseConn(serverDone)
	}))

	scr := contentionScratchFor(sh)
	r := &scr.run
	r.reset(spec, loop, cs)
	if cap(scr.flows) < spec.Flows {
		scr.flows = make([]cflow, spec.Flows)
	}
	r.flows = scr.flows[:spec.Flows]
	counts := spec.Mix.Counts(spec.Flows)
	idx := 0
	for cls := Class(0); cls < numClasses; cls++ {
		n := counts[cls]
		if n == 0 {
			continue
		}
		// Deterministic Poisson arrivals filling the window: the class's
		// arrival stream and each flow's private stream derive from the
		// seed and class label alone, so neither flow count changes in
		// *other* classes nor shard assignment perturbs them.
		arrivals := sim.NewRand(sim.DeriveSeed(spec.Seed, "arrivals", classNames[cls]))
		base := sim.DeriveSeed(spec.Seed, "flow", classNames[cls])
		mean := float64(spec.ArrivalWindow) / float64(n+1)
		var at float64
		for k := 0; k < n; k++ {
			f := &r.flows[idx]
			idx++
			f.class = cls
			f.rng.Seed(base + uint64(k))
			f.run = r
			f.conn = nil
			f.want, f.got, f.begin = 0, 0, 0
			if f.onData == nil {
				// First use of this pooled slot: build the flow's two
				// persistent callbacks. They capture only f; run and conn
				// are read through f when they fire, so the same callback
				// values serve every later cell on this shard.
				f.onData = func(p []byte) { f.got += len(p) }
				f.onClose = func(err error) { f.run.finishTransfer(f, err) }
			}
			switch cls {
			case ClassWeb:
				f.left = spec.WebTransfers
			case ClassBulk:
				f.left = 1
			case ClassRPC:
				f.left = spec.RPCCalls
			}
			at += arrivals.ExpFloat64() * mean
			loop.ScheduleArg(sim.Time(at), contentionArrive, f)
		}
	}
	loop.Run()

	res := ContentionResult{
		Flows:     spec.Flows,
		FlowsDone: r.done,
		Errors:    r.errs,
		Duration:  loop.Now(),
		Events:    loop.Fired() - fired0,
		TailDrops: qs.TailDrops,
		AQMDrops:  qs.AQMDrops,
		AQMMarks:  qs.AQMMarks,
		MaxQueue:  qs.MaxLen,
		PeakConns: r.peak,
	}
	for cls := Class(0); cls < numClasses; cls++ {
		st := &res.Classes[cls]
		st.Flows = counts[cls]
		st.Transfers = r.xfers[cls]
		st.Bytes = r.bytes[cls]
		if s := r.xferMS[cls].Sample(); s.Len() > 0 {
			st.XferP50Ms = s.Median()
			st.XferP95Ms = s.Percentile(95)
		}
	}
	if classOf != nil {
		aggregateClassQueue(&res, qs, classOf)
	}
	return res
}

// aggregateClassQueue folds the downlink queue's per-flow telemetry into
// per-class sums. Flow ids are iterated in ascending order (netem sorts
// them), so the merged per-class sojourn distributions — and their
// percentiles — are deterministic.
func aggregateClassQueue(res *ContentionResult, qs *netem.QueueStats, classOf map[uint64]Class) {
	var samples [numClasses][]*stats.Sample
	var agg [numClasses]netem.FlowQueueStats
	for _, id := range qs.Flows() {
		cls, ok := classOf[id]
		if !ok {
			continue // handshake-only flow the queue saw before class tagging
		}
		f := qs.Flow(id)
		a := &agg[cls]
		a.DequeuedBytes += f.DequeuedBytes
		a.TailDrops += f.TailDrops
		a.AQMDrops += f.AQMDrops
		a.AQMMarks += f.AQMMarks
		a.SojournCount += f.SojournCount
		a.SojournSum += f.SojournSum
		samples[cls] = append(samples[cls], f.SojournSample())
	}
	for cls := Class(0); cls < numClasses; cls++ {
		st := &res.Classes[cls]
		a := agg[cls]
		st.QBytes = a.DequeuedBytes
		st.QMeanMs = a.MeanSojourn().Milliseconds()
		st.QDrops = a.TailDrops + a.AQMDrops
		st.QMarks = a.AQMMarks
		if s := stats.MergeSamples(samples[cls]...); s.Len() > 0 {
			st.QP50Ms = s.Median()
			st.QP95Ms = s.Percentile(95)
		}
	}
}

// startTransfer begins flow f's next transfer: dial the class port, send
// the size request (bulk servers push without one), count response bytes.
func (r *contentionRun) startTransfer(f *cflow) {
	var port uint16
	switch f.class {
	case ClassWeb:
		port = webPort
		size := f.rng.Pareto(float64(r.spec.WebMinBytes), r.spec.WebAlpha)
		f.want = int(size)
		if f.want > r.spec.WebMaxBytes {
			f.want = r.spec.WebMaxBytes
		}
	case ClassRPC:
		port = rpcPort
		f.want = r.spec.RPCBytes
	case ClassBulk:
		port = bulkPort
		f.want = r.spec.BulkBytes
	}
	f.got = 0
	f.begin = r.loop.Now()
	conn, err := r.cs.Dial(contentionClientAddr, nsim.AddrPort{Addr: contentionServerAddr, Port: port})
	if err != nil {
		r.errs++
		r.flowDone(f)
		return
	}
	r.live++
	if r.live > r.peak {
		r.peak = r.live
	}
	if f.class != ClassBulk {
		binary.BigEndian.PutUint64(f.req[:], uint64(f.want))
		conn.WriteStable(f.req[:])
	}
	conn.Close() // half-close: the response still flows
	f.conn = conn
	conn.OnData(f.onData)
	conn.OnClose(f.onClose)
}

// finishTransfer records the completed (or failed) transfer, recycles the
// connection, and schedules the flow's next transfer after its think time.
func (r *contentionRun) finishTransfer(f *cflow, err error) {
	r.live--
	if err != nil || f.got != f.want {
		r.errs++
	} else {
		r.xfers[f.class]++
		r.bytes[f.class] += uint64(f.got)
		r.xferMS[f.class].Add((r.loop.Now() - f.begin).Milliseconds())
	}
	r.cs.Recycle(f.conn)
	f.conn = nil
	f.left--
	if f.left <= 0 {
		r.done++
		return
	}
	var mean sim.Time
	switch f.class {
	case ClassWeb:
		mean = r.spec.WebThink
	case ClassRPC:
		mean = r.spec.RPCGap
	}
	gap := sim.Time(f.rng.ExpFloat64() * float64(mean))
	r.loop.ScheduleArg(gap, contentionArrive, f)
}

// ignoreData is the bulk server's shared no-op data callback (requests on
// the bulk port carry no payload the server needs).
func ignoreData(*tcpsim.Conn, []byte) {}

// flowDone retires a flow without a live connection (dial failure).
func (r *contentionRun) flowDone(f *cflow) {
	f.left = 0
	r.done++
}

// defaultContentionTrace is the fallback 20 Mbit/s constant link.
func defaultContentionTrace() *trace.Trace {
	t, err := trace.Constant(20_000_000, 1000)
	if err != nil {
		panic("engine: " + err.Error())
	}
	return t
}

func mustListen(err error) {
	if err != nil {
		panic("engine: " + err.Error())
	}
}
