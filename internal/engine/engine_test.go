package engine

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestShardForIsConsistentAndInRange(t *testing.T) {
	hits := make([]int, 8)
	for i := 0; i < 500; i++ {
		label := fmt.Sprintf("cell%03d", i)
		s := ShardFor(label, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardFor(%q, 8) = %d out of range", label, s)
		}
		if again := ShardFor(label, 8); again != s {
			t.Fatalf("ShardFor(%q, 8) unstable: %d then %d", label, s, again)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d received none of 500 labels: degenerate partition", s)
		}
	}
}

func TestEngineAffinityRunIndexAlignedAndShardLocal(t *testing.T) {
	e := New(4)
	cells := make([]string, 40)
	for i := range cells {
		cells[i] = fmt.Sprintf("c%02d", i)
	}
	// Affinity mode: strict ShardFor pinning, no stealing. Each shard
	// appends the cells it ran to its own slice — one goroutine per shard,
	// so no synchronization. Cells assigned to one shard must arrive in
	// label-index order (run-to-completion, deterministic order).
	perShard := make([][]int, 4)
	out := e.Run(Job{Cells: cells, Affinity: true, Run: func(sh *Shard, cell int, label string) any {
		if want := ShardFor(label, 4); sh.Index() != want {
			t.Errorf("cell %q ran on shard %d, want %d", label, sh.Index(), want)
		}
		perShard[sh.Index()] = append(perShard[sh.Index()], cell)
		return label + "!"
	}})
	for i, v := range out {
		if v != cells[i]+"!" {
			t.Fatalf("out[%d] = %v, want %q", i, v, cells[i]+"!")
		}
	}
	for s, ran := range perShard {
		for j := 1; j < len(ran); j++ {
			if ran[j] <= ran[j-1] {
				t.Fatalf("shard %d ran cells out of index order: %v", s, ran)
			}
		}
	}
	p := e.Placement()
	if p.Steals() != 0 {
		t.Fatalf("affinity run recorded %d steals, want 0", p.Steals())
	}
	for i, c := range p.Cells {
		if c.Ran != c.Planned {
			t.Fatalf("affinity cell %d ran on shard %d, planned %d", i, c.Ran, c.Planned)
		}
	}
}

func TestEngineResultsShardCountInvariant(t *testing.T) {
	cells := make([]string, 24)
	for i := range cells {
		cells[i] = fmt.Sprintf("grid/%d", i)
	}
	run := func(shards int) []any {
		return New(shards).Run(Job{Cells: cells, Run: func(sh *Shard, cell int, label string) any {
			// A deterministic per-cell computation using the shard's loop:
			// schedule a label-seeded burst of events and report the final
			// virtual time and event count.
			loop := sh.Loop()
			rng := sim.NewRand(sim.DeriveSeed(7, label))
			for i := 0; i < 50; i++ {
				loop.Schedule(rng.Duration(sim.Second), func(sim.Time) {})
			}
			loop.Run()
			return fmt.Sprintf("%s:%v", label, loop.Now())
		}})
	}
	want := run(1)
	for _, shards := range []int{2, 8} {
		got := run(shards)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: out[%d] = %v, want %v", shards, i, got[i], want[i])
			}
		}
	}
}

func TestShardPayloadStableAndZero(t *testing.T) {
	sh := NewShard()
	p1 := sh.Payload(1 << 10)
	if len(p1) != 1<<10 {
		t.Fatalf("Payload(1K) len = %d", len(p1))
	}
	p2 := sh.Payload(512)
	if &p1[0] != &p2[0] {
		t.Fatal("smaller Payload reallocated instead of reslicing")
	}
	p3 := sh.Payload(1 << 20)
	for i, b := range p3 {
		if b != 0 {
			t.Fatalf("payload[%d] = %d, want 0", i, b)
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if n := New(0).NumShards(); n < 1 {
		t.Fatalf("New(0) made %d shards", n)
	}
	if n := New(3).NumShards(); n != 3 {
		t.Fatalf("New(3) made %d shards", n)
	}
}

// placementJob runs a tiny deterministic workload: each cell schedules a
// label-derived number of loop events on its shard's loop.
func placementJob(n int) Job {
	cells := make([]string, n)
	for i := range cells {
		cells[i] = fmt.Sprintf("p%02d", i)
	}
	return Job{Cells: cells, Run: func(sh *Shard, cell int, label string) any {
		loop := sh.Loop()
		events := int(sim.DeriveSeed(1, label)%7) + 1
		for i := 0; i < events; i++ {
			loop.Schedule(sim.Time(i)*sim.Millisecond, func(sim.Time) {})
		}
		loop.Run()
		return events
	}}
}

// TestEnginePlacementAccounting: the placement report's cell counts cover
// every cell exactly once, total events equal the per-cell truth at any
// shard count, and the skew is a well-formed max/mean.
func TestEnginePlacementAccounting(t *testing.T) {
	job := placementJob(24)
	var wantEvents uint64
	for _, label := range job.Cells {
		wantEvents += sim.DeriveSeed(1, label)%7 + 1
	}
	for _, shards := range []int{1, 4} {
		e := New(shards)
		out := e.Run(job)
		p := e.Placement()
		if len(p.Shards) != shards {
			t.Fatalf("placement has %d shards, want %d", len(p.Shards), shards)
		}
		cells := 0
		for _, s := range p.Shards {
			cells += s.Cells
		}
		if cells != len(out) {
			t.Fatalf("placement counts %d cells, want %d", cells, len(out))
		}
		if got := p.TotalEvents(); got != wantEvents {
			t.Fatalf("shards=%d: total events %d, want %d", shards, got, wantEvents)
		}
		if skew := p.EventSkew(); skew < 1.0 {
			t.Fatalf("shards=%d: event skew %v < 1 (max below mean is impossible)", shards, skew)
		}
		if len(p.Cells) != len(out) {
			t.Fatalf("placement records %d cells, want %d", len(p.Cells), len(out))
		}
		var cellEvents uint64
		for i, c := range p.Cells {
			if c.Label != job.Cells[i] {
				t.Fatalf("cell %d labelled %q, want %q", i, c.Label, job.Cells[i])
			}
			if c.Ran < 0 || c.Ran >= shards || c.Planned < 0 || c.Planned >= shards {
				t.Fatalf("cell %d shard indices out of range: planned %d ran %d", i, c.Planned, c.Ran)
			}
			cellEvents += c.Events
		}
		if cellEvents != wantEvents {
			t.Fatalf("shards=%d: per-cell events sum %d, want %d", shards, cellEvents, wantEvents)
		}
		if prof := p.Profile(); len(prof) != len(out) {
			t.Fatalf("profile has %d labels, want %d", len(prof), len(out))
		}
		if s := p.String(); s == "" {
			t.Fatal("empty placement report")
		}
	}
}
