// Package engine is the sharded many-user emulation engine: it partitions
// independent simulation cells across N shards, each shard owning a private
// event loop and private object pools, and runs every shard to completion
// with zero cross-shard locking on the packet/event path.
//
// The experiments package's Runner already parallelizes scenario matrices,
// but its unit of state reuse is a sync.Pool'd Scratch: which warmed pools a
// cell draws is scheduling-dependent, and a cell's work cannot be pinned to
// a core. The engine makes the partitioning itself deterministic, in the
// style NetChain assigns keys to chain replicas by consistent hashing: a
// cell's shard is a pure function of its label and the shard count, never of
// execution timing. Within a shard, cells run sequentially (run to
// completion) on the shard's own sim.Loop, nsim.PoolSet, tcpsim.SegmentPool
// and tcpsim.ConnPool, so the hot path touches no shared mutable state and
// needs no synchronization; the only cross-shard communication is each
// cell's result landing in its own slot of the output slice. Results
// therefore merge order-free: an artifact assembled from the index-aligned
// output is byte-identical at any shard count, which the determinism suite
// verifies at 1, 2 and 8 shards under both schedulers.
//
// Placement is two-level. Level 1 plans: with a cost oracle (per-label event
// counts retained from the engine's previous Run, or primed via Prime) the
// cells are LPT bin-packed — heaviest first onto the least-loaded shard;
// cold, the plan falls back to the ShardFor label hash. Level 2 balances at
// runtime: each shard claims cells from its own queue through an atomic
// cursor, and a shard whose queue drains steals whole cells from the victim
// with the most unclaimed weight. Because a cell's seed derives from its
// label and never from the shard that happens to execute it, any steal
// interleaving produces the identical output; stealing moves only wall-clock
// time and pool warmth. Jobs that thread per-label state through a shard opt
// out with Affinity, which restores strict ShardFor pinning.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Shard is one run-to-completion execution lane: an event loop plus every
// pool the simulation hot path allocates from. A shard serves one cell at a
// time; the loop and pools are reset-and-reused across the shard's
// sequential cells, so pool warmup is paid once per shard rather than once
// per cell. Nothing in a Shard is safe for concurrent use — the engine is
// what guarantees each shard stays on a single goroutine.
type Shard struct {
	index   int
	labels  pprof.LabelSet
	loop    *sim.Loop
	pools   *nsim.PoolSet
	segs    *tcpsim.SegmentPool
	conns   *tcpsim.ConnPool
	payload []byte
	scratch map[string]any
}

// NewShard returns a standalone shard (index 0). Benchmarks and tests that
// drive one cell directly use this; experiment drivers go through New/Run.
func NewShard() *Shard { return newShard(0) }

func newShard(index int) *Shard {
	return &Shard{
		index:  index,
		labels: pprof.Labels("shard", strconv.Itoa(index)),
		pools:  &nsim.PoolSet{},
		segs:   &tcpsim.SegmentPool{},
		conns:  tcpsim.NewConnPool(),
	}
}

// Index is the shard's position in its engine, 0-based.
func (sh *Shard) Index() int { return sh.index }

// Loop returns a reset, warmed event loop for the next cell, replacing it
// only when the process-default scheduler kind changed since the last cell
// (Reset would otherwise keep the stale kind alive across an ablation run).
func (sh *Shard) Loop() *sim.Loop {
	if sh.loop == nil || sh.loop.Scheduler() != sim.DefaultScheduler() {
		sh.loop = sim.NewLoop()
		return sh.loop
	}
	sh.loop.Reset()
	return sh.loop
}

// Pools returns the shard's packet/datagram pool set, for
// nsim.NewNetworkPooled.
func (sh *Shard) Pools() *nsim.PoolSet { return sh.pools }

// Segments returns the shard's TCP segment pool, for tcpsim.NewStackPool.
func (sh *Shard) Segments() *tcpsim.SegmentPool { return sh.segs }

// Conns returns the shard's connection pool, for tcpsim.Stack.SetConnPool.
func (sh *Shard) Conns() *tcpsim.ConnPool { return sh.conns }

// Payload returns a stable all-zero buffer of at least n bytes, grown on
// demand and reused across the shard's cells. Servers serve response bodies
// from it via WriteStable, so a cell's transfer volume never shows up as
// per-cell allocation. The buffer must never be written.
func (sh *Shard) Payload(n int) []byte {
	if cap(sh.payload) < n {
		sh.payload = make([]byte, n)
	}
	return sh.payload[:n]
}

// Scratch returns the shard-local value stored under key, creating it with
// mk on first use. Workloads park reusable per-shard state here (pooled
// session structs, accumulators) so it survives across the shard's cells
// without living in package globals. Shard-local like everything else on
// Shard: never share a scratch value across shards.
func (sh *Shard) Scratch(key string, mk func() any) any {
	if sh.scratch == nil {
		sh.scratch = make(map[string]any)
	}
	v, ok := sh.scratch[key]
	if !ok {
		v = mk()
		sh.scratch[key] = v
	}
	return v
}

// Engine is a fixed set of shards. The zero shard count convention follows
// Runner.Parallel: <= 0 means GOMAXPROCS(0).
type Engine struct {
	shards    []*Shard
	placement Placement
	// weights is the cost oracle: per-label loop-event counts retained from
	// the engine's most recent Run (or injected via Prime). Consulted by the
	// LPT planner; labels never seen cost the mean of the known ones.
	weights map[string]uint64
	// Scheduler scratch, reused across Runs so the plan/claim path stays
	// allocation-free after the first fan-out at a given shape.
	queues []shardQueue
	order  []int32
	wts    []uint64
	loads  []uint64
}

// shardQueue is one shard's planned slice of the job. cells holds cell
// indices in execution order; prefix[i] is the summed weight of cells[:i]
// (len(cells)+1 entries), so the unclaimed weight is one subtraction. The
// cursor is the single point of cross-shard contention: owner and thieves
// all claim by fetch-add, so every cell is claimed exactly once. The pad
// keeps neighbouring cursors off one cache line.
type shardQueue struct {
	cells  []int32
	prefix []uint64
	cursor atomic.Int64
	_      [64]byte
}

// claim takes the next unclaimed cell, or -1 when the queue is drained.
func (q *shardQueue) claim() int {
	i := q.cursor.Add(1) - 1
	if int(i) < len(q.cells) {
		return int(q.cells[i])
	}
	return -1
}

// remaining estimates the unclaimed weight left in the queue.
func (q *shardQueue) remaining() uint64 {
	c := q.cursor.Load()
	if int(c) >= len(q.cells) {
		return 0
	}
	return q.prefix[len(q.cells)] - q.prefix[c]
}

// CellLoad is one cell's slice of a Run: where the plan put it, which shard
// actually executed it, and how many loop events it fired there.
type CellLoad struct {
	Label   string
	Planned int
	Ran     int
	Events  uint64
}

// ShardLoad is one shard's share of a Run: how many cells it executed, how
// many loop events those cells fired, how many of the cells were stolen
// from another shard's plan, and how long the shard's worker was busy.
// WallNs is wall-clock and therefore diagnostic only — it depends on the
// host — unlike Events, which is machine-independent.
type ShardLoad struct {
	Cells  int
	Events uint64
	Stolen int
	WallNs int64
}

// Placement reports how the last Run's work spread across shards. Cells
// differ in weight, so the event skew is the honest number: a max/mean of
// 1.0 is a perfectly level run, 2.0 means the busiest shard did double the
// average. PlannedEventSkew scores the plan (level 1) alone; EventSkew
// scores what actually ran after stealing (level 2). The placement depends
// on the shard count and on steal timing, so it is diagnostic output —
// experiment artifacts, which must be byte-identical at any shard count,
// must not embed it.
type Placement struct {
	Shards []ShardLoad
	Cells  []CellLoad
	// Oracle records whether the plan was LPT over retained weights (true)
	// or the cold-start label hash (false).
	Oracle bool
}

// TotalEvents sums loop events over all shards.
func (p Placement) TotalEvents() uint64 {
	var total uint64
	for _, s := range p.Shards {
		total += s.Events
	}
	return total
}

// EventSkew returns the busiest shard's event count over the mean event
// count of non-idle capacity (max/mean), 0 for an empty placement. This is
// the post-steal skew: events count on the shard that executed the cell.
func (p Placement) EventSkew() float64 {
	if len(p.Shards) == 0 {
		return 0
	}
	var max uint64
	for _, s := range p.Shards {
		if s.Events > max {
			max = s.Events
		}
	}
	total := p.TotalEvents()
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(p.Shards))
	return float64(max) / mean
}

// PlannedEventSkew returns the event skew the level-1 plan alone would have
// produced: each cell's events charged to the shard the plan assigned it,
// as if no stealing had happened. Comparing it with EventSkew isolates how
// much balance the stealing pass bought.
func (p Placement) PlannedEventSkew() float64 {
	if len(p.Shards) == 0 {
		return 0
	}
	planned := make([]uint64, len(p.Shards))
	var total uint64
	for _, c := range p.Cells {
		if c.Planned >= 0 && c.Planned < len(planned) {
			planned[c.Planned] += c.Events
			total += c.Events
		}
	}
	if total == 0 {
		return 0
	}
	var max uint64
	for _, ev := range planned {
		if ev > max {
			max = ev
		}
	}
	mean := float64(total) / float64(len(planned))
	return float64(max) / mean
}

// Steals counts cells that executed on a shard other than their planned one.
func (p Placement) Steals() int {
	var n int
	for _, s := range p.Shards {
		n += s.Stolen
	}
	return n
}

// Utilization is mean busy wall-time over the longest shard's busy
// wall-time, in (0, 1]: 1.0 means every worker finished together, 0.25 on
// four shards means three of them mostly idled. 0 when no wall time was
// recorded. Wall-clock, so host-dependent and diagnostic only.
func (p Placement) Utilization() float64 {
	var total, max int64
	for _, s := range p.Shards {
		total += s.WallNs
		if s.WallNs > max {
			max = s.WallNs
		}
	}
	if max == 0 {
		return 0
	}
	mean := float64(total) / float64(len(p.Shards))
	return mean / float64(max)
}

// Profile is the cost oracle's currency: per-label loop-event counts from a
// finished Run, suitable for Engine.Prime on this or another engine. An
// experiment runner that repeats a grid feeds repetition N's Profile into
// repetition N+1 so the plan starts hot.
type Profile map[string]uint64

// Profile extracts the per-label event counts of this placement.
func (p Placement) Profile() Profile {
	if len(p.Cells) == 0 {
		return nil
	}
	prof := make(Profile, len(p.Cells))
	for _, c := range p.Cells {
		prof[c.Label] = c.Events
	}
	return prof
}

// String renders the per-shard load table with the skew summary.
func (p Placement) String() string {
	var b strings.Builder
	plan := "hash"
	if p.Oracle {
		plan = "lpt"
	}
	fmt.Fprintf(&b, "shard placement (%d shards, %s plan):\n", len(p.Shards), plan)
	fmt.Fprintf(&b, "  %5s %6s %12s %7s %10s\n", "shard", "cells", "events", "stolen", "wall")
	for i, s := range p.Shards {
		fmt.Fprintf(&b, "  %5d %6d %12d %7d %10s\n",
			i, s.Cells, s.Events, s.Stolen, time.Duration(s.WallNs).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, "  total events %d, steals %d, utilization %.2f\n",
		p.TotalEvents(), p.Steals(), p.Utilization())
	fmt.Fprintf(&b, "  event skew max/mean: planned %.2f, post-steal %.2f\n",
		p.PlannedEventSkew(), p.EventSkew())
	return b.String()
}

// Placement reports the per-shard load of the most recent Run.
func (e *Engine) Placement() Placement { return e.placement }

// Prime seeds the engine's cost oracle with per-label weights, typically a
// Placement.Profile() from an earlier run of the same grid (on any engine).
// The next Run plans with LPT over these weights instead of the cold label
// hash. Each Run refreshes the oracle with what it measured, so priming is
// only ever needed for the first fan-out.
func (e *Engine) Prime(p Profile) {
	if len(p) == 0 {
		return
	}
	if e.weights == nil {
		e.weights = make(map[string]uint64, len(p))
	}
	for label, ev := range p {
		e.weights[label] = ev
	}
}

// New returns an engine with n shards (n <= 0 means GOMAXPROCS(0)).
func New(n int) *Engine {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine{shards: make([]*Shard, n)}
	for i := range e.shards {
		e.shards[i] = newShard(i)
	}
	return e
}

// NumShards reports the engine's shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Shard returns shard i, for callers driving a single cell directly.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// ShardFor maps a cell label to its owning shard: a consistent, timing-free
// partition by hash of the label alone. Cells with the same label always
// land on the same shard of an n-shard engine, so any per-label state a
// workload threads through its shard stays shard-local; which shard that is
// has no effect on results (each cell's seed derives from its label, not
// its shard), only on which warmed pools serve it.
func ShardFor(label string, n int) int {
	return int(sim.DeriveSeed(0x51a4d, "shard", label) % uint64(n))
}

// Job is one fan-out: a list of cell labels and the function that runs one
// cell on its assigned shard. Run must derive all randomness from the cell
// label (sim.DeriveSeed) and must not touch state shared with other cells;
// under those conditions Engine.Run's output is independent of shard count
// and of which shard executes which cell.
type Job struct {
	// Cells enumerates the cell labels in output order.
	Cells []string
	// Run executes one cell on sh. cell is the index into Cells and label
	// is Cells[cell]. The returned value lands in slot cell of Run's output.
	Run func(sh *Shard, cell int, label string) any
	// Affinity pins every cell to ShardFor(label, n) and disables stealing,
	// for workloads that thread per-label state through a specific shard.
	// The default (false) lets the engine rebalance: LPT planning when the
	// cost oracle is warm, plus runtime cell stealing.
	Affinity bool
}

// Run executes the job and returns the results index-aligned with job.Cells.
//
// Cells are first planned onto shards: by ShardFor hash when job.Affinity is
// set or the cost oracle is cold, by weight-aware LPT bin-packing otherwise.
// Each shard's worker goroutine (pprof-labelled "shard=i") then drains its
// own queue through an atomic cursor; unless job.Affinity is set, a worker
// whose queue empties steals unclaimed cells from the most-loaded victim.
// Results land in index-aligned slots and every cell's behaviour is a pure
// function of its label, so the output is byte-identical for every shard
// count, plan and steal interleaving. The run's per-shard and per-cell load
// is recorded for Placement, and the measured per-label events refresh the
// cost oracle for the engine's next Run.
func (e *Engine) Run(job Job) []any {
	n := len(e.shards)
	out := make([]any, len(job.Cells))
	e.placement = Placement{
		Shards: make([]ShardLoad, n),
		Cells:  make([]CellLoad, len(job.Cells)),
	}
	e.plan(job)
	steal := !job.Affinity && n > 1
	if n == 1 || len(job.Cells) == 0 {
		e.runWorker(job, out, e.shards[0], false)
	} else {
		var wg sync.WaitGroup
		for s := range e.shards {
			if !steal && len(e.queues[s].cells) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh *Shard) {
				defer wg.Done()
				e.runWorker(job, out, sh, steal)
			}(e.shards[s])
		}
		wg.Wait()
	}
	// Fold per-cell measurements into per-shard loads and refresh the
	// oracle. Single-writer by now — every worker has joined.
	if e.weights == nil {
		e.weights = make(map[string]uint64, len(job.Cells))
	}
	for i := range e.placement.Cells {
		c := &e.placement.Cells[i]
		load := &e.placement.Shards[c.Ran]
		load.Cells++
		load.Events += c.Events
		if c.Ran != c.Planned {
			load.Stolen++
		}
		e.weights[c.Label] = c.Events
	}
	return out
}

// plan fills the per-shard queues and the per-cell Planned slots. With a
// warm oracle (and stealing allowed) it LPT bin-packs: cells sorted by
// estimated weight descending, each placed on the currently lightest shard.
// Affinity jobs and cold starts use the ShardFor hash, which preserves
// label→shard pinning and index order within each shard.
func (e *Engine) plan(job Job) {
	n := len(e.shards)
	if len(e.queues) != n {
		e.queues = make([]shardQueue, n)
	}
	for s := range e.queues {
		q := &e.queues[s]
		q.cells = q.cells[:0]
		q.prefix = q.prefix[:0]
		q.cursor.Store(0)
	}
	wts, oracle := e.cellWeights(job)
	if oracle && !job.Affinity {
		// LPT: heaviest cell first onto the least-loaded shard. Ties break
		// on the lower cell index / lower shard index, so the plan is a
		// pure function of (labels, weights, n).
		ord := e.order[:0]
		for i := range job.Cells {
			ord = append(ord, int32(i))
		}
		sort.Slice(ord, func(a, b int) bool {
			wa, wb := wts[ord[a]], wts[ord[b]]
			if wa != wb {
				return wa > wb
			}
			return ord[a] < ord[b]
		})
		e.order = ord
		loads := append(e.loads[:0], make([]uint64, n)...)
		e.loads = loads
		for _, ci := range ord {
			s := 0
			for j := 1; j < n; j++ {
				if loads[j] < loads[s] {
					s = j
				}
			}
			e.queues[s].cells = append(e.queues[s].cells, ci)
			loads[s] += wts[ci]
		}
		e.placement.Oracle = true
	} else {
		for i, label := range job.Cells {
			s := ShardFor(label, n)
			e.queues[s].cells = append(e.queues[s].cells, int32(i))
		}
	}
	for s := range e.queues {
		q := &e.queues[s]
		q.prefix = append(q.prefix, 0)
		var sum uint64
		for _, ci := range q.cells {
			sum += wts[ci]
			q.prefix = append(q.prefix, sum)
		}
		for _, ci := range q.cells {
			e.placement.Cells[ci].Planned = s
		}
	}
	for i, label := range job.Cells {
		e.placement.Cells[i].Label = label
	}
}

// cellWeights estimates each cell's cost. With no retained weight for any of
// the job's labels the oracle is cold (second return false) and every cell
// weighs 1; otherwise known labels use their retained event count (clamped
// to >= 1 so prefix sums stay strictly increasing) and unknown labels weigh
// the mean of the known ones.
func (e *Engine) cellWeights(job Job) ([]uint64, bool) {
	wts := e.wts[:0]
	var sum uint64
	known := 0
	for _, label := range job.Cells {
		w := e.weights[label]
		if w > 0 {
			sum += w
			known++
		}
		wts = append(wts, w)
	}
	e.wts = wts
	if known == 0 {
		for i := range wts {
			wts[i] = 1
		}
		return wts, false
	}
	mean := sum / uint64(known)
	if mean == 0 {
		mean = 1
	}
	for i := range wts {
		if wts[i] == 0 {
			wts[i] = mean
		}
	}
	return wts, true
}

// runWorker drains shard sh's queue, then — when steal is set — other
// shards' queues, one claimed cell at a time. The per-cell loads are
// written to disjoint Placement.Cells slots, so workers never share a
// counter; per-shard totals are folded after the join (a shared
// ShardLoad row per claim would put every worker's hot stores on the same
// cache lines).
func (e *Engine) runWorker(job Job, out []any, sh *Shard, steal bool) {
	start := time.Now()
	pprof.Do(context.Background(), sh.labels, func(context.Context) {
		for {
			ci := e.queues[sh.index].claim()
			if ci < 0 {
				if !steal {
					break
				}
				ci = e.stealCell(sh.index)
				if ci < 0 {
					break
				}
			}
			e.runCell(job, out, sh, ci)
		}
	})
	e.placement.Shards[sh.index].WallNs = time.Since(start).Nanoseconds()
}

// stealCell claims one cell from the victim with the most unclaimed
// estimated weight, rescanning if it loses the race for a victim's last
// cell. Returns -1 once every queue is drained. No allocation: the scan
// reads cursors and prefix sums already in place.
func (e *Engine) stealCell(self int) int {
	for {
		victim, most := -1, uint64(0)
		for j := range e.queues {
			if j == self {
				continue
			}
			if rem := e.queues[j].remaining(); rem > most {
				victim, most = j, rem
			}
		}
		if victim < 0 {
			return -1
		}
		if ci := e.queues[victim].claim(); ci >= 0 {
			return ci
		}
	}
}

// runCell executes one claimed cell on sh and records its result and load.
func (e *Engine) runCell(job Job, out []any, sh *Shard, ci int) {
	// Event attribution must survive Shard.Loop replacing the loop mid-cell
	// (scheduler-kind change): Fired accumulates across Reset but a fresh
	// loop starts at zero, so the baseline only applies if the pointer is
	// unchanged.
	prevLoop := sh.loop
	var base uint64
	if prevLoop != nil {
		base = prevLoop.Fired()
	}
	out[ci] = job.Run(sh, ci, job.Cells[ci])
	c := &e.placement.Cells[ci]
	c.Ran = sh.index
	if sh.loop != nil {
		if sh.loop == prevLoop {
			c.Events = sh.loop.Fired() - base
		} else {
			c.Events = sh.loop.Fired()
		}
	}
}
