// Package engine is the sharded many-user emulation engine: it partitions
// independent simulation cells across N shards, each shard owning a private
// event loop and private object pools, and runs every shard to completion
// with zero cross-shard locking on the packet/event path.
//
// The experiments package's Runner already parallelizes scenario matrices,
// but its unit of state reuse is a sync.Pool'd Scratch: which warmed pools a
// cell draws is scheduling-dependent, and a cell's work cannot be pinned to
// a core. The engine makes the partitioning itself deterministic, in the
// style NetChain assigns keys to chain replicas by consistent hashing: a
// cell's shard is a pure function of its label and the shard count, never of
// execution timing. Within a shard, cells run sequentially (run to
// completion) on the shard's own sim.Loop, nsim.PoolSet, tcpsim.SegmentPool
// and tcpsim.ConnPool, so the hot path touches no shared mutable state and
// needs no synchronization; the only cross-shard communication is each
// cell's result landing in its own slot of the output slice. Results
// therefore merge order-free: an artifact assembled from the index-aligned
// output is byte-identical at any shard count, which the determinism suite
// verifies at 1, 2 and 8 shards under both schedulers.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/nsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Shard is one run-to-completion execution lane: an event loop plus every
// pool the simulation hot path allocates from. A shard serves one cell at a
// time; the loop and pools are reset-and-reused across the shard's
// sequential cells, so pool warmup is paid once per shard rather than once
// per cell. Nothing in a Shard is safe for concurrent use — the engine is
// what guarantees each shard stays on a single goroutine.
type Shard struct {
	index   int
	loop    *sim.Loop
	pools   *nsim.PoolSet
	segs    *tcpsim.SegmentPool
	conns   *tcpsim.ConnPool
	payload []byte
}

// NewShard returns a standalone shard (index 0). Benchmarks and tests that
// drive one cell directly use this; experiment drivers go through New/Run.
func NewShard() *Shard { return newShard(0) }

func newShard(index int) *Shard {
	return &Shard{
		index: index,
		pools: &nsim.PoolSet{},
		segs:  &tcpsim.SegmentPool{},
		conns: tcpsim.NewConnPool(),
	}
}

// Index is the shard's position in its engine, 0-based.
func (sh *Shard) Index() int { return sh.index }

// Loop returns a reset, warmed event loop for the next cell, replacing it
// only when the process-default scheduler kind changed since the last cell
// (Reset would otherwise keep the stale kind alive across an ablation run).
func (sh *Shard) Loop() *sim.Loop {
	if sh.loop == nil || sh.loop.Scheduler() != sim.DefaultScheduler() {
		sh.loop = sim.NewLoop()
		return sh.loop
	}
	sh.loop.Reset()
	return sh.loop
}

// Pools returns the shard's packet/datagram pool set, for
// nsim.NewNetworkPooled.
func (sh *Shard) Pools() *nsim.PoolSet { return sh.pools }

// Segments returns the shard's TCP segment pool, for tcpsim.NewStackPool.
func (sh *Shard) Segments() *tcpsim.SegmentPool { return sh.segs }

// Conns returns the shard's connection pool, for tcpsim.Stack.SetConnPool.
func (sh *Shard) Conns() *tcpsim.ConnPool { return sh.conns }

// Payload returns a stable all-zero buffer of at least n bytes, grown on
// demand and reused across the shard's cells. Servers serve response bodies
// from it via WriteStable, so a cell's transfer volume never shows up as
// per-cell allocation. The buffer must never be written.
func (sh *Shard) Payload(n int) []byte {
	if cap(sh.payload) < n {
		sh.payload = make([]byte, n)
	}
	return sh.payload[:n]
}

// Engine is a fixed set of shards. The zero shard count convention follows
// Runner.Parallel: <= 0 means GOMAXPROCS(0).
type Engine struct {
	shards    []*Shard
	placement Placement
}

// ShardLoad is one shard's share of a Run: how many cells it executed and
// how many loop events those cells fired.
type ShardLoad struct {
	Cells  int
	Events uint64
}

// Placement reports how the last Run's work spread across shards. The
// label hash balances cell counts only in expectation, and cells differ in
// weight, so the event skew is the honest number: a max/mean of 1.0 is a
// perfectly level run, 2.0 means the busiest shard did double the average
// and bounds the wall-clock loss to hash placement. The placement depends
// on the shard count, so it is diagnostic output — experiment artifacts,
// which must be byte-identical at any shard count, must not embed it.
type Placement struct {
	Shards []ShardLoad
}

// TotalEvents sums loop events over all shards.
func (p Placement) TotalEvents() uint64 {
	var total uint64
	for _, s := range p.Shards {
		total += s.Events
	}
	return total
}

// EventSkew returns the busiest shard's event count over the mean event
// count of non-idle capacity (max/mean), 0 for an empty placement.
func (p Placement) EventSkew() float64 {
	if len(p.Shards) == 0 {
		return 0
	}
	var max uint64
	for _, s := range p.Shards {
		if s.Events > max {
			max = s.Events
		}
	}
	total := p.TotalEvents()
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(p.Shards))
	return float64(max) / mean
}

// String renders the per-shard load table with the skew summary.
func (p Placement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard placement (%d shards):\n", len(p.Shards))
	fmt.Fprintf(&b, "  %5s %6s %12s\n", "shard", "cells", "events")
	for i, s := range p.Shards {
		fmt.Fprintf(&b, "  %5d %6d %12d\n", i, s.Cells, s.Events)
	}
	fmt.Fprintf(&b, "  total events %d, event skew max/mean %.2f\n",
		p.TotalEvents(), p.EventSkew())
	return b.String()
}

// Placement reports the per-shard load of the most recent Run.
func (e *Engine) Placement() Placement { return e.placement }

// New returns an engine with n shards (n <= 0 means GOMAXPROCS(0)).
func New(n int) *Engine {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine{shards: make([]*Shard, n)}
	for i := range e.shards {
		e.shards[i] = newShard(i)
	}
	return e
}

// NumShards reports the engine's shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Shard returns shard i, for callers driving a single cell directly.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// ShardFor maps a cell label to its owning shard: a consistent, timing-free
// partition by hash of the label alone. Cells with the same label always
// land on the same shard of an n-shard engine, so any per-label state a
// workload threads through its shard stays shard-local; which shard that is
// has no effect on results (each cell's seed derives from its label, not
// its shard), only on which warmed pools serve it.
func ShardFor(label string, n int) int {
	return int(sim.DeriveSeed(0x51a4d, "shard", label) % uint64(n))
}

// Job is one fan-out: a list of cell labels and the function that runs one
// cell on its assigned shard. Run must derive all randomness from the cell
// label (sim.DeriveSeed) and must not touch state shared with other cells;
// under those conditions Engine.Run's output is independent of shard count.
type Job struct {
	// Cells enumerates the cell labels in output order.
	Cells []string
	// Run executes one cell on sh. cell is the index into Cells and label
	// is Cells[cell]. The returned value lands in slot cell of Run's output.
	Run func(sh *Shard, cell int, label string) any
}

// Run partitions the job's cells onto the engine's shards (ShardFor), runs
// each shard's cells sequentially in label-index order on one goroutine per
// non-empty shard, and returns the results index-aligned with job.Cells.
// Each shard goroutine carries a pprof "shard" label, so a CPU or memory
// profile of a run attributes samples per shard. The run's per-shard load
// is recorded for Placement.
func (e *Engine) Run(job Job) []any {
	out := make([]any, len(job.Cells))
	n := len(e.shards)
	assigned := make([][]int, n)
	for i, label := range job.Cells {
		s := ShardFor(label, n)
		assigned[s] = append(assigned[s], i)
	}
	e.placement = Placement{Shards: make([]ShardLoad, n)}
	runShard := func(sh *Shard, cells []int) {
		pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(sh.index)), func(context.Context) {
			load := &e.placement.Shards[sh.index]
			for _, i := range cells {
				// Event attribution must survive Shard.Loop replacing the
				// loop mid-cell (scheduler-kind change): Fired accumulates
				// across Reset but a fresh loop starts at zero, so the
				// baseline only applies if the pointer is unchanged.
				prevLoop := sh.loop
				var base uint64
				if prevLoop != nil {
					base = prevLoop.Fired()
				}
				out[i] = job.Run(sh, i, job.Cells[i])
				load.Cells++
				if sh.loop != nil {
					if sh.loop == prevLoop {
						load.Events += sh.loop.Fired() - base
					} else {
						load.Events += sh.loop.Fired()
					}
				}
			}
		})
	}
	if n == 1 {
		runShard(e.shards[0], assigned[0])
		return out
	}
	var wg sync.WaitGroup
	for s, cells := range assigned {
		if len(cells) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *Shard, cells []int) {
			defer wg.Done()
			runShard(sh, cells)
		}(e.shards[s], cells)
	}
	wg.Wait()
	return out
}
