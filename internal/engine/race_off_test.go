//go:build !race

package engine

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
