// Benchmarks that regenerate every table and figure in the paper, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// paper benchmark runs a subsampled configuration per iteration (the full
// corpus runs live in cmd/mm-bench); the measured statistics are reported
// via b.ReportMetric so `go test -bench` output doubles as a results
// table.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/browser"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/httpx"
	"repro/internal/match"
	"repro/internal/netem"
	"repro/internal/nsim"
	"repro/internal/shells"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/webgen"
)

// BenchmarkFigure2 regenerates Figure 2 (shell overhead CDFs): median PLT
// overhead of DelayShell 0 ms and LinkShell 1000 Mbit/s over bare
// ReplayShell. Paper: +0.15% and +1.5%.
func BenchmarkFigure2(b *testing.B) {
	cfg := experiments.DefaultFig2()
	cfg.Sites = 40
	var last experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig2(cfg)
	}
	b.ReportMetric(last.OverheadD*100, "delay0-overhead-%")
	b.ReportMetric(last.OverheadL*100, "link1000-overhead-%")
	b.ReportMetric(last.Replay.Median(), "replay-median-ms")
}

// BenchmarkTable1 regenerates Table 1 (reproducibility): per-site PLT
// mean across two machines. Paper: CNBC 7584±120 / 7612±111 ms, wikiHow
// 4804±37 / 4800±37 ms.
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.DefaultTable1()
	cfg.Loads = 10
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table1(cfg)
	}
	b.ReportMetric(last.Rows[0].Machines[0].Mean(), "cnbc-mean-ms")
	b.ReportMetric(last.Rows[1].Machines[0].Mean(), "wikihow-mean-ms")
	b.ReportMetric(last.Rows[0].MeanGap()*100, "cnbc-machine-gap-%")
}

// BenchmarkTable2 regenerates Table 2 (multi-origin ablation grid):
// per-site PLT distortion of single-server replay. Paper medians range
// from 1.6% (1 Mbit/s) to 21.4% (25 Mbit/s).
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.DefaultTable2()
	cfg.Sites = 15
	var last experiments.Table2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table2(cfg)
	}
	lo := last.Cell(30*sim.Millisecond, 1_000_000)
	hi := last.Cell(30*sim.Millisecond, 25_000_000)
	b.ReportMetric(lo.Diffs.Median()*100, "1mbps-median-diff-%")
	b.ReportMetric(hi.Diffs.Median()*100, "25mbps-median-diff-%")
	b.ReportMetric(hi.Diffs.Percentile(95)*100, "25mbps-p95-diff-%")
}

// BenchmarkFigure3 regenerates Figure 3 (replay fidelity): median PLT gap
// of multi-origin and single-server replay versus the live web. Paper:
// 7.9% and 29.6%.
func BenchmarkFigure3(b *testing.B) {
	cfg := experiments.DefaultFig3()
	cfg.Loads = 20
	var last experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig3(cfg)
	}
	b.ReportMetric(last.MultiGap*100, "multi-gap-%")
	b.ReportMetric(last.SingleGap*100, "single-gap-%")
	b.ReportMetric(last.Web.Median(), "web-median-ms")
}

// BenchmarkServersPerSite regenerates the §4 corpus statistic. Paper:
// median 20, p95 51, 9 single-server sites of 500.
func BenchmarkServersPerSite(b *testing.B) {
	var last experiments.ServersResult
	for i := 0; i < b.N; i++ {
		last = experiments.ServersPerSite(1, 500, 1)
	}
	b.ReportMetric(last.Counts.Median(), "median-servers")
	b.ReportMetric(last.Counts.Percentile(95), "p95-servers")
	b.ReportMetric(float64(last.SingleServer), "single-server-sites")
}

// BenchmarkIsolation regenerates the §4 isolation claim: a load measured
// alongside a saturating neighbour must match the solo load exactly.
func BenchmarkIsolation(b *testing.B) {
	identical := true
	for i := 0; i < b.N; i++ {
		r := experiments.Isolation(5, 1)
		identical = identical && r.Identical()
	}
	v := 1.0
	if !identical {
		v = 0
	}
	b.ReportMetric(v, "bit-identical")
}

// --- Parallel engine benches ---

// benchFig2Parallel regenerates a subsampled Figure 2 at a fixed engine
// parallelism. Comparing the Sequential/Parallel4/Parallel8 variants
// measures the scenario-matrix engine's wall-clock scaling; on a
// multi-core host Parallel4 should run Figure 2 at least 2x faster than
// Sequential (on a single-core host the variants tie, since every cell is
// CPU-bound simulation).
func benchFig2Parallel(b *testing.B, parallel int) {
	cfg := experiments.DefaultFig2()
	cfg.Sites = 40
	cfg.Parallel = parallel
	var last experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig2(cfg)
	}
	b.ReportMetric(float64(parallel), "parallel")
	b.ReportMetric(last.OverheadD*100, "delay0-overhead-%")
}

func BenchmarkFigure2Sequential(b *testing.B) { benchFig2Parallel(b, 1) }
func BenchmarkFigure2Parallel4(b *testing.B)  { benchFig2Parallel(b, 4) }
func BenchmarkFigure2Parallel8(b *testing.B)  { benchFig2Parallel(b, 8) }

// BenchmarkSweep measures the scenario-sweep driver (the open-ended
// site x stack x seed grid) at GOMAXPROCS parallelism.
func BenchmarkSweep(b *testing.B) {
	cfg := experiments.DefaultSweep()
	cfg.Parallel = 0 // GOMAXPROCS
	var last experiments.SweepResult
	for i := 0; i < b.N; i++ {
		last = experiments.Sweep(cfg)
	}
	b.ReportMetric(float64(last.Cells), "cells")
	b.ReportMetric(last.Rows[0].PLT.Median(), "row0-median-ms")
}

// --- Ablation benches (DESIGN.md) ---

// BenchmarkAblationDelayBoxPerEvent compares the two DelayShell queue
// implementations: per-packet event scheduling (DelayBox) versus a single
// armed timer over a FIFO (FIFODelayBox, Mahimahi's structure).
func BenchmarkAblationDelayBoxPerEvent(b *testing.B) {
	benchDelayImpl(b, func(loop *sim.Loop) netem.Box {
		return netem.NewDelayBox(loop, 10*sim.Millisecond)
	})
}

func BenchmarkAblationDelayBoxFIFO(b *testing.B) {
	benchDelayImpl(b, func(loop *sim.Loop) netem.Box {
		return netem.NewFIFODelayBox(loop, 10*sim.Millisecond)
	})
}

func benchDelayImpl(b *testing.B, mk func(*sim.Loop) netem.Box) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop()
		box := mk(loop)
		delivered := 0
		box.SetSink(func(*netem.Packet) { delivered++ })
		for j := 0; j < 1000; j++ {
			j := j
			loop.Schedule(sim.Time(j)*sim.Microsecond, func(sim.Time) {
				box.Send(&netem.Packet{Size: netem.MTU})
			})
		}
		loop.Run()
		if delivered != 1000 {
			b.Fatalf("delivered %d", delivered)
		}
	}
}

// BenchmarkAblationMatcherExactOnly vs full: cost and hit rate of the
// Mahimahi query-prefix matching rule versus exact-only matching, on a
// workload whose queries carry cache-buster tokens.
func BenchmarkAblationMatcherPrefix(b *testing.B) {
	page := webgen.GeneratePage(sim.NewRand(1), webgen.CNBCLike())
	site := webgen.Materialize(page)
	m := match.New(site)
	b.ReportAllocs()
	b.ResetTimer()
	// Requests carry perturbed cache-buster suffixes: exact match fails,
	// the Mahimahi prefix rule recovers.
	hits := 0
	for i := 0; i < b.N; i++ {
		e := site.Exchanges[i%len(site.Exchanges)]
		req := e.Request.Clone()
		req.Target += "?cb=12345"
		if _, ok := m.Lookup(req); ok {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N)*100, "hit-%")
}

// BenchmarkAblationConnsPerHost sweeps the browser's per-origin connection
// limit, the knob the multi-origin effect depends on.
func BenchmarkAblationConnsPerHost(b *testing.B) {
	page := webgen.GeneratePage(sim.NewRand(5), webgen.WikiHowLike())
	tr, err := trace.Constant(14_000_000, 2000)
	if err != nil {
		b.Fatal(err)
	}
	for _, conns := range []int{2, 6, 12} {
		b.Run(map[int]string{2: "conns2", 6: "conns6", 12: "conns12"}[conns], func(b *testing.B) {
			var plt float64
			for i := 0; i < b.N; i++ {
				opts := browser.DefaultOptions()
				opts.ConnsPerHost = conns
				plt = experiments.PLTms(experiments.LoadSpec{
					Page: page, DNSLatency: sim.Millisecond,
					Shells: []shells.Shell{
						shells.NewDelayShell(30 * sim.Millisecond),
						shells.NewLinkShell(tr, tr),
					},
					Browser: &opts,
				})
			}
			b.ReportMetric(plt, "plt-ms")
		})
	}
}

// BenchmarkAblationTraceBoxQueue compares LinkShell with an unlimited
// queue against a droptail-limited one under a saturating load.
func BenchmarkAblationTraceBoxQueue(b *testing.B) {
	page := webgen.GeneratePage(sim.NewRand(6), webgen.WikiHowLike())
	for _, qlen := range []int{0, 32} {
		name := "unlimited"
		if qlen > 0 {
			name = "droptail32"
		}
		b.Run(name, func(b *testing.B) {
			tr, err := trace.Constant(2_000_000, 2000)
			if err != nil {
				b.Fatal(err)
			}
			var plt float64
			for i := 0; i < b.N; i++ {
				link := shells.NewLinkShell(tr, tr)
				link.QueuePackets = qlen
				plt = experiments.PLTms(experiments.LoadSpec{
					Page: page, DNSLatency: sim.Millisecond,
					Shells: []shells.Shell{
						shells.NewDelayShell(50 * sim.Millisecond),
						link,
					},
				})
			}
			b.ReportMetric(plt, "plt-ms")
		})
	}
}

// BenchmarkQdisc measures the queue-discipline hot path: one op is 64
// enqueues followed by draining dequeues on a warmed queue, the virtual
// clock advancing 5 ms per dequeue. Under that schedule the tail of every
// drain shows CoDel sojourns above target for more than an interval, so
// the control law's full path — dropping state, square-root spacing,
// recycle-on-drop — runs every op (asserted below), not just its
// below-target fast path; the codel-mark and pie rows run the ECN marking
// path and PIE's probability controller the same way. Every discipline
// must stay at 0 allocs/op — the qdisc boundary sits under every emulated
// packet. ns/packet (via ReportMetric) is the comparable per-packet cost.
func BenchmarkQdisc(b *testing.B) {
	const burst = 64
	cases := []struct {
		name string
		ect  bool
		mk   func() netem.Qdisc
	}{
		{"droptail", false, func() netem.Qdisc { return netem.NewDropTail(256, 0) }},
		{"codel", false, func() netem.Qdisc { return netem.NewCoDel(netem.CoDelConfig{MaxPackets: 256}) }},
		{"codel-mark", true, func() netem.Qdisc {
			return netem.NewCoDel(netem.CoDelConfig{MaxPackets: 256, ECN: true})
		}},
		{"pie", false, func() netem.Qdisc { return netem.NewPIE(netem.PIEConfig{MaxPackets: 256}) }},
		{"pie-mark", true, func() netem.Qdisc {
			return netem.NewPIE(netem.PIEConfig{MaxPackets: 256, ECN: true})
		}},
		// The fq rows spread the burst over 8 flows (Flow = i mod 8 below),
		// so every op runs the full RFC 8290 path: hashing, DRR rotation
		// through all buckets, and each bucket's own CoDel law.
		{"fqcodel", false, func() netem.Qdisc {
			return netem.NewFQCoDel(netem.FQCoDelConfig{MaxPackets: 256, Flows: 8})
		}},
		{"fqcodel-mark", true, func() netem.Qdisc {
			return netem.NewFQCoDel(netem.FQCoDelConfig{MaxPackets: 256, Flows: 8, ECN: true})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			q := tc.mk()
			pkts := make([]*netem.Packet, burst)
			for i := range pkts {
				pkts[i] = &netem.Packet{Size: netem.MTU, ECT: tc.ect, Flow: uint64(i % 8)}
			}
			now := sim.Time(0)
			step := func() {
				for _, p := range pkts {
					p.CE = false
					q.Enqueue(p, now)
				}
				// Drain with the clock advancing: late packets in each
				// burst wait 100ms+ (past CoDel's interval and many PIE
				// update periods), so the control law engages within
				// every op.
				for {
					now += 5 * sim.Millisecond
					if q.Dequeue(now) == nil {
						break
					}
				}
			}
			step() // warm the ring to steady-state capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(burst*b.N), "ns/packet")
			qs := q.QueueStats()
			if tc.ect && qs.AQMMarks == 0 {
				b.Fatalf("%s bench never exercised the marking law", tc.name)
			}
			if !tc.ect && tc.name != "droptail" && qs.AQMDrops == 0 {
				b.Fatalf("%s bench never exercised the drop law", tc.name)
			}
		})
	}
}

// BenchmarkImpair measures the impairment-box hot path under the same
// contract as BenchmarkQdisc: one op pushes a 64-packet burst through the
// box (plus, for the reorder row, the loop turn that drains its holds) and
// must stay at 0 allocs/op — every box sits on the per-packet path of an
// emulated link. Packets come from a PacketPool and are recycled by the
// sink so DuplicateBox clones reuse pooled storage; the markov4 row prices
// the 4-state chain's two-draw discipline inside a LossBox.
func BenchmarkImpair(b *testing.B) {
	const burst = 64
	cases := []struct {
		name string
		mk   func(loop *sim.Loop) netem.Box
	}{
		{"reorder", func(loop *sim.Loop) netem.Box {
			return netem.NewReorderBox(loop, 0.1, 0.25, 1, sim.Millisecond, sim.NewRand(7))
		}},
		{"duplicate", func(loop *sim.Loop) netem.Box {
			return netem.NewDuplicateBox(0.1, 0.25, sim.NewRand(7))
		}},
		{"corrupt", func(loop *sim.Loop) netem.Box {
			return netem.NewCorruptBox(0.1, 0.25, sim.NewRand(7))
		}},
		{"markov4", func(loop *sim.Loop) netem.Box {
			return netem.NewLossBoxModel(netem.NewMarkov4State(0.05, 0.4, 0.3, 0.2, 0.02), sim.NewRand(7))
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			loop := sim.NewLoop()
			box := tc.mk(loop)
			pool := &netem.PacketPool{}
			box.SetSink(func(pkt *netem.Packet) { pool.Put(pkt) })
			step := func() {
				for i := 0; i < burst; i++ {
					pkt := pool.Get()
					pkt.Size = netem.MTU
					pkt.Flow = uint64(i % 8)
					box.Send(pkt)
				}
				loop.Run() // drains reorder holds; no-op for stateless boxes
			}
			step() // warm the pool to steady-state population
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(burst*b.N), "ns/packet")
			s := box.Stats()
			if s.Arrived == 0 || s.Delivered == 0 {
				b.Fatalf("%s bench moved no packets: %+v", tc.name, s)
			}
			if pool.Outstanding() != 0 {
				b.Fatalf("%s bench leaked %d pooled packets", tc.name, pool.Outstanding())
			}
		})
	}
}

// BenchmarkPageLoad measures raw simulator throughput: one full replayed
// page load per iteration (the unit of work every experiment multiplies).
func BenchmarkPageLoad(b *testing.B) {
	page := webgen.GeneratePage(sim.NewRand(2), webgen.WikiHowLike())
	site := webgen.Materialize(page)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Load(experiments.LoadSpec{
			Page: page, Site: site, DNSLatency: sim.Millisecond,
			Shells: []shells.Shell{shells.NewDelayShell(30 * sim.Millisecond)},
		})
	}
}

// --- Hot-path microbenches ---
//
// These isolate the three layers BenchmarkPageLoad composes — the event
// loop, the TCP transport over an emulated link, and the replay matcher —
// so a regression in any one of them is attributable from `go test -bench`
// output alone. All three report allocations; the loop and matcher paths
// are expected to stay at (or very near) zero allocs/op in steady state.

// BenchmarkLoopSchedule measures the scheduling primitive every simulated
// packet, timer, and browser event goes through, under each scheduler
// (sub-benchmark wheel = default calendar queue, heap = PR2 ablation).
//
// What one "op" covers: scheduling 64 events onto a warmed loop that
// already holds a standing population of 1200 future events spread over
// 100 distinct timestamps (the queue depth and ~12-events-per-timestamp
// clustering a replayed page load sustains; see mm-bench -schedstats) —
// 32 clustered onto 8 distinct future timestamps (the packet-train shape:
// bursts share a box exit instant) and 32 at distinct timestamps (the
// timer/CPU-task shape) — then firing exactly those 64. One op is
// therefore 64 schedule+fire round trips including clock advances, and
// ns/event (reported via ReportMetric) is the comparable per-event cost:
// elapsed / (64 * N). Compare ns/event across -sched ablations and PRs,
// not ns/op, which also absorbs loop-warmup effects.
func BenchmarkLoopSchedule(b *testing.B) {
	for _, kind := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
		b.Run(kind.String(), func(b *testing.B) {
			benchLoopSchedule(b, kind, 1200, 100)
		})
	}
	// The many-flow regime: a 10k-flow contention cell keeps an order of
	// magnitude more timers and in-flight packets queued than a single page
	// load. ns/event here versus the wheel row above is the "flat at depth"
	// check — the calendar queue's per-event cost must not grow with the
	// standing population.
	b.Run("wheel-standing12k", func(b *testing.B) {
		benchLoopSchedule(b, sim.SchedWheel, 12000, 1000)
	})
}

// benchLoopSchedule runs the schedule+fire workload described above against
// a loop pre-loaded with a standing population of future events spread over
// the given number of distinct timestamps.
func benchLoopSchedule(b *testing.B, kind sim.SchedulerKind, standing, spread int) {
	loop := sim.NewLoopSched(kind)
	h := func(sim.Time) {}
	// Standing population at far-future deadlines: present in the
	// queue for every measured operation, never fired.
	for j := 0; j < standing; j++ {
		loop.Schedule(sim.Time(j%spread+1)*sim.Second*100_000, h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			// 8 distinct deadlines, 4 back-to-back events each: the
			// burst shape (a window of packets entering one box).
			loop.Schedule(sim.Time(j/4+1)*sim.Microsecond, h)
		}
		for j := 0; j < 32; j++ {
			// Distinct deadlines: the unclustered tail.
			loop.Schedule(sim.Time(100+j)*sim.Microsecond, h)
		}
		loop.RunFor(sim.Millisecond)
		if loop.Pending() != standing {
			b.Fatalf("standing population disturbed: %d", loop.Pending())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(64*b.N), "ns/event")
}

// BenchmarkContention measures the sharded many-flow engine (internal/engine):
// web + bulk + RPC tcpsim flows contending in one fq_codel cell. The flowsN
// rows scale the per-cell population from 100 to 10000 on a single warmed
// shard — ns/event (total wall clock over events fired) is the per-event
// cost of the whole stack (loop, pooled conns/segments/packets, qdisc) and
// must stay flat as flows grow; compare it against BenchmarkLoopSchedule's
// rows to see how much the packet path adds over bare scheduling. The grid
// rows run 8 cells of 500 flows through Engine.Run at 1 and 4 shards: the
// shard-scaling (wall-clock) comparison, with byte-identical results. As
// with the Figure 2 parallel rows, shard counts tie on a single-core host —
// every cell is CPU-bound simulation.
func BenchmarkContention(b *testing.B) {
	up, err := trace.Constant(400_000_000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	spec := func(flows int, seed uint64) engine.ContentionSpec {
		// Trimmed transfers so even the 10k row is dominated by concurrent
		// steady-state forwarding, not a handful of giant downloads.
		return engine.ContentionSpec{
			Seed:          seed,
			Flows:         flows,
			Mix:           engine.Mix{Web: 8, Bulk: 1, RPC: 1},
			Qdisc:         netem.QdiscSpec{Kind: netem.QdiscFQCoDel, Packets: 600, Flows: 256},
			Up:            up,
			Down:          up,
			ArrivalWindow: 500 * sim.Millisecond,
			WebTransfers:  1,
			WebThink:      10 * sim.Millisecond,
			WebMaxBytes:   32 << 10,
			BulkBytes:     64 << 10,
			RPCCalls:      2,
			RPCGap:        10 * sim.Millisecond,
		}
	}
	for _, flows := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("flows%d", flows), func(b *testing.B) {
			sh := engine.NewShard()
			sp := spec(flows, 0xbe7c)
			warm := engine.RunContention(sh, sp) // warm pools to steady state
			if warm.FlowsDone != flows || warm.Errors != 0 {
				b.Fatalf("warmup: done=%d errs=%d, want %d/0", warm.FlowsDone, warm.Errors, flows)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var events uint64
			var peak int
			for i := 0; i < b.N; i++ {
				r := engine.RunContention(sh, sp)
				events += r.Events
				peak = r.PeakConns
				if r.FlowsDone != flows {
					b.Fatalf("done=%d, want %d", r.FlowsDone, flows)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			b.ReportMetric(float64(peak), "peak-conns")
		})
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("grid8x500-shards%d", shards), func(b *testing.B) {
			e := engine.New(shards)
			cells := make([]string, 8)
			for i := range cells {
				cells[i] = fmt.Sprintf("bench/%d", i)
			}
			job := engine.Job{Cells: cells, Run: func(sh *engine.Shard, cell int, label string) any {
				return engine.RunContention(sh, spec(500, sim.DeriveSeed(3, label)))
			}}
			e.Run(job) // warm pools under the cold hash plan
			e.Run(job) // prime the cost oracle: measured runs plan LPT + steal
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				for _, v := range e.Run(job) {
					r := v.(engine.ContentionResult)
					events += r.Events
					if r.FlowsDone != 500 {
						b.Fatalf("done=%d, want 500", r.FlowsDone)
					}
				}
			}
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		})
	}
}

// BenchmarkEngine measures the two-level scheduler itself on a synthetic
// power-law workload: 32 cells whose event counts span ~30x — the
// adversarial shape for static hash placement, where one heavy cell can
// hold a whole run hostage. The steal rows run the default scheduler (a
// cold run primes the cost oracle, so measured iterations plan LPT and
// steal at runtime); the affinity rows pin cells to their hash shard. The
// planskew/postskew metrics report event imbalance before and after
// stealing — the machine-independent evidence that the scheduler levels
// the load even where wall clock ties (single-core hosts).
func BenchmarkEngine(b *testing.B) {
	noop := func(sim.Time) {}
	cells := make([]string, 32)
	weights := make([]int, 32)
	for i := range cells {
		cells[i] = fmt.Sprintf("skew/%d", i)
		weights[i] = 2000 / (i + 1) // power law: 2000, 1000, 666, ..., 62
	}
	job := func(affinity bool) engine.Job {
		return engine.Job{Cells: cells, Affinity: affinity, Run: func(sh *engine.Shard, cell int, label string) any {
			loop := sh.Loop()
			for k := 0; k < weights[cell]; k++ {
				loop.Schedule(sim.Time(k)*sim.Microsecond, noop)
			}
			loop.Run()
			return loop.Now()
		}}
	}
	for _, mode := range []string{"steal", "affinity"} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s-shards%d", mode, shards), func(b *testing.B) {
				e := engine.New(shards)
				j := job(mode == "affinity")
				e.Run(j) // cold hash plan; primes the oracle for the steal rows
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Run(j)
				}
				b.StopTimer()
				p := e.Placement()
				b.ReportMetric(p.PlannedEventSkew(), "planskew")
				b.ReportMetric(p.EventSkew(), "postskew")
				b.ReportMetric(float64(p.Steals()), "steals")
			})
		}
	}
}

// BenchmarkMatcherLookup measures a replay-table lookup against a
// CNBC-sized archive with the precomputed candidate index and memoized
// request accessors: the per-request cost of every replayed fetch.
func BenchmarkMatcherLookup(b *testing.B) {
	page := webgen.GeneratePage(sim.NewRand(3), webgen.CNBCLike())
	site := webgen.Materialize(page)
	m := match.New(site)
	reqs := make([]*httpx.Request, len(site.Exchanges))
	for i, e := range site.Exchanges {
		reqs[i] = e.Request.Clone()
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := m.Lookup(reqs[i%len(reqs)]); ok {
			hits++
		}
	}
	if hits != b.N {
		b.Fatalf("hits = %d, want %d", hits, b.N)
	}
}

// BenchmarkTCPTransfer measures a 1 MiB server-to-client transfer over a
// 5 ms delay link per iteration: handshake, slow start, pooled
// segment/packet/datagram lifecycle, and teardown.
func BenchmarkTCPTransfer(b *testing.B) {
	const total = 1 << 20
	payload := make([]byte, total)
	serverAP := nsim.AddrPort{Addr: nsim.ParseAddr("10.0.0.2"), Port: 80}
	clientAddr := nsim.ParseAddr("10.0.0.1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop()
		network := nsim.NewNetwork(loop)
		cl := network.NewNamespace("client")
		sv := network.NewNamespace("server")
		cl.AddAddress(clientAddr)
		sv.AddAddress(serverAP.Addr)
		ce, se := nsim.Connect(cl, sv,
			netem.NewPipeline(netem.NewDelayBox(loop, 5*sim.Millisecond)),
			netem.NewPipeline(netem.NewDelayBox(loop, 5*sim.Millisecond)))
		cl.AddDefaultRoute(ce)
		sv.AddDefaultRoute(se)
		sstack := tcpsim.NewStack(sv)
		if err := sstack.Listen(serverAP, func(c *tcpsim.Conn) {
			c.OnData(func([]byte) {})
			c.WriteStable(payload)
			c.Close()
		}); err != nil {
			b.Fatal(err)
		}
		conn, err := tcpsim.NewStack(cl).Dial(clientAddr, serverAP)
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		conn.OnData(func(p []byte) { got += len(p) })
		conn.Close()
		loop.Run()
		if got != total {
			b.Fatalf("received %d bytes, want %d", got, total)
		}
	}
}

// BenchmarkScenarioScript measures what the chaos scheduler costs when
// nothing is happening: the packetpath row runs a 64-packet burst through
// a rate-limited link whose qdisc a ScenarioScript is watching, after
// every scripted transition has already fired. Off the transition
// instants the script is pure bookkeeping-at-rest — the packet path must
// stay at 0 allocs/op, same contract as the bare qdisc rows. The scenario
// row prices a full scripted mini-run (setup, three transitions with
// drain accounting, teardown), where allocation is expected: transitions
// append transcript entries and build replacement qdiscs.
func BenchmarkScenarioScript(b *testing.B) {
	const burst = 64
	b.Run("packetpath", func(b *testing.B) {
		loop := sim.NewLoop()
		q := netem.NewCoDel(netem.CoDelConfig{MaxPackets: 256})
		r := netem.NewRateBox(loop, 1_000_000_000, q)
		r.SetSink(func(*netem.Packet) {})
		script := netem.NewScenarioScript(loop)
		script.Watch(q)
		script.RateStep(sim.Millisecond, r, 2_000_000_000)
		script.SwapQdisc(2*sim.Millisecond, r,
			netem.QdiscSpec{Kind: netem.QdiscCoDel, Packets: 256}, netem.DrainHold)

		pkts := make([]*netem.Packet, burst)
		for i := range pkts {
			pkts[i] = &netem.Packet{Size: netem.MTU, Flow: uint64(i % 8)}
		}
		step := func() {
			for _, p := range pkts {
				r.Send(p)
			}
			loop.Run()
		}
		// Warm past both transition instants: the scripted mutations fire
		// here, so timed ops run the steady-state path a script is merely
		// attached to.
		step()
		if got := len(script.Transitions()); got != 2 {
			b.Fatalf("warmup fired %d transitions, want 2", got)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(burst*b.N), "ns/packet")
	})
	// The impairpath row prices the full impairment pipeline (4-state loss
	// → reorder → duplicate → corrupt) after a script has hot-swapped every
	// box once: steady state must stay at 0 allocs/op, same contract as the
	// bare box rows in BenchmarkImpair.
	b.Run("impairpath", func(b *testing.B) {
		loop := sim.NewLoop()
		loss := netem.NewLossBoxModel(netem.NewMarkov4State(0.05, 0.4, 0.3, 0.2, 0.02), sim.NewRand(3))
		reorder := netem.NewReorderBox(loop, 0.05, 0, 1, sim.Millisecond, sim.NewRand(4))
		dup := netem.NewDuplicateBox(0.05, 0, sim.NewRand(5))
		corrupt := netem.NewCorruptBox(0.05, 0, sim.NewRand(6))
		pipe := netem.NewPipeline(loss, reorder, dup, corrupt)
		pool := &netem.PacketPool{}
		pipe.SetSink(func(pkt *netem.Packet) { pool.Put(pkt) })
		script := netem.NewScenarioScript(loop)
		script.LossModelSwap(sim.Millisecond, loss, netem.NewMarkov4State(0.1, 0.5, 0.2, 0.3, 0.05))
		script.ReorderStep(sim.Millisecond, reorder, 0.1, 0)
		script.DuplicateStep(sim.Millisecond, dup, 0.1, 0)
		script.CorruptStep(sim.Millisecond, corrupt, 0.1, 0)
		step := func() {
			for i := 0; i < burst; i++ {
				pkt := pool.Get()
				pkt.Size = netem.MTU
				pkt.Flow = uint64(i % 8)
				pipe.Send(pkt)
			}
			loop.Run()
		}
		step() // fires all four scripted swaps and warms the pool
		if got := len(script.Transitions()); got != 4 {
			b.Fatalf("warmup fired %d transitions, want 4", got)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(burst*b.N), "ns/packet")
	})
	b.Run("scenario", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loop := sim.NewLoop()
			q := netem.NewDropTail(0, 0)
			r := netem.NewRateBox(loop, 1_000_000, q)
			delivered := 0
			r.SetSink(func(*netem.Packet) { delivered++ })
			script := netem.NewScenarioScript(loop)
			script.Watch(q)
			script.RateStep(60*sim.Millisecond, r, 2_000_000)
			script.SwapQdisc(120*sim.Millisecond, r,
				netem.QdiscSpec{Kind: netem.QdiscCoDel}, netem.DrainHold)
			script.SwapQdisc(200*sim.Millisecond, r,
				netem.QdiscSpec{Packets: 4}, netem.DrainFlush)
			loop.Schedule(0, func(sim.Time) {
				for j := 0; j < 30; j++ {
					r.Send(&netem.Packet{Size: netem.MTU, Flow: uint64(j % 3)})
				}
			})
			loop.Run()
			script.Finish(loop.Now())
			if delivered == 0 {
				b.Fatal("scenario delivered nothing")
			}
		}
	})
}
