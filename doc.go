// Package repro is a from-scratch Go reproduction of "Mahimahi: A
// Lightweight Toolkit for Reproducible Web Measurement" (Netravali et al.,
// SIGCOMM 2014).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution notes, and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure. The root-level
// benchmarks (bench_test.go) regenerate each artifact:
//
//	go test -bench=. -benchmem
//
// The cmd/ directory holds the command-line tools (mm-record, mm-replay,
// mm-delay, mm-link, mm-trace, mm-bench); examples/ holds runnable
// walkthroughs of the public API in internal/core.
package repro
